//! Deterministic case generation: config, RNG and case outcomes.

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of accepted cases to run.
    pub cases: u32,
}

impl Config {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Config {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Config {
        Config { cases: 64 }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed — the case is discarded, not failed.
    Reject(String),
    /// A `prop_assert!` failed — the test fails with this message.
    Fail(String),
}

impl TestCaseError {
    /// A failure outcome.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    /// A discard outcome.
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

/// A small, fast, deterministic RNG (xorshift64*). Seeded from the test
/// name so every test function gets a reproducible independent stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test name (FNV-1a hash of the bytes).
    pub fn for_test(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: h | 1, // never zero
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        // modulo bias is irrelevant at test-generation scale
        self.next_u64() % bound
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::for_test("alpha");
        let mut b = TestRng::for_test("alpha");
        let mut c = TestRng::for_test("beta");
        let (x, y, z) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(x, y);
        assert_ne!(x, z);
    }

    #[test]
    fn below_in_range() {
        let mut r = TestRng::for_test("range");
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
            let u = r.unit_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
