//! Collection strategies: `vec(element, size)`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A length specification for collection strategies: a fixed size or a
/// (half-open or inclusive) range of sizes.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max_inclusive: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        if self.min >= self.max_inclusive {
            return self.min;
        }
        let span = (self.max_inclusive - self.min + 1) as u64;
        self.min + rng.below(span) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange {
            min: n,
            max_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            min: *r.start(),
            max_inclusive: *r.end(),
        }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// The strategy returned by [`vec`].
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn gen(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.gen(rng)).collect()
    }
}
