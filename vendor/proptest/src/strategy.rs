//! The `Strategy` trait and combinators (map / flat-map / recursion /
//! weighted union / boxing), plus range, tuple and constant strategies.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A source of random values of one type.
///
/// Unlike real proptest there is no shrinking: a strategy is just a
/// deterministic function of the test RNG state.
pub trait Strategy: Clone + 'static {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn gen(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Value) -> O + Clone + 'static,
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy it selects.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        S2: Strategy,
        F: Fn(Self::Value) -> S2 + Clone + 'static,
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Build recursive values: `self` generates leaves, `recurse` wraps a
    /// strategy for depth `d` into one for depth `d + 1`. The size hints
    /// are accepted for API compatibility and ignored.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        S2: Strategy<Value = Self::Value>,
        F: Fn(BoxedStrategy<Self::Value>) -> S2 + Clone + 'static,
        Self: Sized,
        Self::Value: 'static,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(current).boxed();
            current = Union::new(vec![(1, leaf.clone()), (1, deeper)]).boxed();
        }
        current
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Object-safe view of a strategy, for [`BoxedStrategy`].
trait DynStrategy {
    type Value;
    fn gen_dyn(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn gen_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.gen(rng)
    }
}

/// A type-erased strategy (`Strategy::boxed`).
pub struct BoxedStrategy<V>(Rc<dyn DynStrategy<Value = V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V: 'static> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn gen(&self, rng: &mut TestRng) -> V {
        self.0.gen_dyn(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Clone)]
pub struct Just<V: Clone>(pub V);

impl<V: Clone + 'static> Strategy for Just<V> {
    type Value = V;
    fn gen(&self, _rng: &mut TestRng) -> V {
        self.0.clone()
    }
}

/// `Strategy::prop_map` adapter.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O + Clone + 'static,
{
    type Value = O;
    fn gen(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.gen(rng))
    }
}

/// `Strategy::prop_flat_map` adapter.
#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2 + Clone + 'static,
{
    type Value = S2::Value;
    fn gen(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.gen(rng)).gen(rng)
    }
}

/// Weighted choice between strategies (`prop_oneof!`).
pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total: u64,
}

impl<V> Union<V> {
    /// Build from `(weight, strategy)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty or all weights are zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Union<V> {
        let total: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! needs at least one weighted arm");
        Union { arms, total }
    }
}

impl<V> Clone for Union<V> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
            total: self.total,
        }
    }
}

impl<V: 'static> Strategy for Union<V> {
    type Value = V;
    fn gen(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.arms {
            let w = u64::from(*w);
            if pick < w {
                return s.gen(rng);
            }
            pick -= w;
        }
        unreachable!("weights exhausted")
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+ $(,)?) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn gen(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128) - (self.start as i128);
                    let off = rng.below(span as u64) as i128;
                    ((self.start as i128) + off) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn gen(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    let span = (*self.end() as i128) - (*self.start() as i128) + 1;
                    let off = rng.below(span as u64) as i128;
                    ((*self.start() as i128) + off) as $t
                }
            }
        )+
    };
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f32> {
    type Value = f32;
    fn gen(&self, rng: &mut TestRng) -> f32 {
        self.start + (self.end - self.start) * rng.unit_f64() as f32
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn gen(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {
        $(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn gen(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.gen(rng),)+)
                }
            }
        )+
    };
}

tuple_strategy!((A), (A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));
