//! Offline stand-in for the `proptest` crate.
//!
//! The workspace pins its dependencies to local `vendor/` packages so it
//! builds without network access. This crate reimplements the subset of
//! proptest's API the test suite uses: the [`strategy::Strategy`] trait
//! with `prop_map` / `prop_flat_map` / `prop_recursive` / `boxed`,
//! range and tuple and regex-literal strategies, `collection::vec`,
//! the `proptest!` / `prop_oneof!` / `prop_assert!` family of macros,
//! and a deterministic xorshift-based case generator.
//!
//! **No shrinking**: a failing case reports its inputs via the assertion
//! message but is not minimized. Case generation is deterministic per
//! test function, so failures reproduce across runs.

pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Everything a test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume};
    pub use crate::{prop_oneof, proptest};

    /// Alias so `prop::collection::vec(...)` works, as in real proptest.
    pub use crate as prop;
}

/// Weighted choice between strategies with a common value type.
///
/// `prop_oneof![s1, s2]` or `prop_oneof![3 => s1, 1 => s2]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Assert inside a proptest body; failure aborts the case with a message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                $($fmt)+
            )));
        }
    };
}

/// `prop_assert!` for equality, printing both sides.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)+);
    }};
}

/// `prop_assert!` for inequality.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} == {:?}", a, b);
    }};
}

/// Discard the current case (it does not count toward the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `Config::cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg); $($rest)*);
    };
    (@run ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::Config = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                while accepted < cfg.cases {
                    attempts += 1;
                    if attempts > cfg.cases.saturating_mul(20).max(100) {
                        panic!("too many rejected cases in {}", stringify!($name));
                    }
                    $(let $pat = $crate::strategy::Strategy::gen(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match outcome {
                        Ok(()) => accepted += 1,
                        Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!("proptest case {} failed: {}", accepted + 1, msg)
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::test_runner::Config::default()); $($rest)*);
    };
}
