//! String strategies from regex-like literals.
//!
//! Real proptest accepts any regex; this stand-in supports the single
//! shape the test suite uses — one character class with a bounded
//! repetition, `[class]{min,max}` — and panics on anything else so an
//! unsupported pattern fails loudly rather than generating garbage.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

impl Strategy for &'static str {
    type Value = String;
    fn gen(&self, rng: &mut TestRng) -> String {
        let (alphabet, min, max) = parse_class_repeat(self);
        let len = min + rng.below((max - min + 1) as u64) as usize;
        (0..len)
            .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
            .collect()
    }
}

/// Parse `[class]{min,max}` into (alphabet, min, max).
///
/// # Panics
///
/// Panics on any other pattern shape.
fn parse_class_repeat(pattern: &str) -> (Vec<char>, usize, usize) {
    fn unsupported(pattern: &str) -> ! {
        panic!("unsupported regex strategy pattern: {pattern:?}")
    }
    let Some(rest) = pattern.strip_prefix('[') else {
        unsupported(pattern)
    };
    let Some((class, rest)) = rest.split_once(']') else {
        unsupported(pattern)
    };
    let Some(counts) = rest.strip_prefix('{').and_then(|r| r.strip_suffix('}')) else {
        unsupported(pattern)
    };
    let Some((lo, hi)) = counts.split_once(',') else {
        unsupported(pattern)
    };
    let Ok(min) = lo.trim().parse::<usize>() else {
        unsupported(pattern)
    };
    let Ok(max) = hi.trim().parse::<usize>() else {
        unsupported(pattern)
    };
    assert!(min <= max, "bad repetition in {pattern:?}");

    let mut alphabet = Vec::new();
    let chars: Vec<char> = class.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\\' && i + 1 < chars.len() {
            alphabet.push(match chars[i + 1] {
                'n' => '\n',
                't' => '\t',
                'r' => '\r',
                other => other,
            });
            i += 2;
        } else if i + 2 < chars.len() && chars[i + 1] == '-' {
            let (lo, hi) = (c, chars[i + 2]);
            assert!(lo <= hi, "bad char range in {pattern:?}");
            for code in lo as u32..=hi as u32 {
                alphabet.extend(char::from_u32(code));
            }
            i += 3;
        } else {
            alphabet.push(c);
            i += 1;
        }
    }
    assert!(!alphabet.is_empty(), "empty char class in {pattern:?}");
    (alphabet, min, max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn class_with_ranges_and_escapes() {
        let (alpha, min, max) = parse_class_repeat(r"[a-c\n-]{0,5}");
        assert!(alpha.contains(&'a') && alpha.contains(&'c'));
        assert!(alpha.contains(&'\n') && alpha.contains(&'-'));
        assert_eq!((min, max), (0, 5));
    }

    #[test]
    fn generates_within_bounds() {
        let mut rng = TestRng::for_test("strings");
        for _ in 0..200 {
            let s = r"[a-z0-9 :=+*()<>\n-]{0,150}".gen(&mut rng);
            assert!(s.chars().count() <= 150);
        }
    }
}
