//! Offline stand-in for the `criterion` crate.
//!
//! Vendored so the workspace's `benches/` targets compile and run without
//! network access. It implements the subset of the API the benches use —
//! `Criterion::benchmark_group`, `sample_size`, `measurement_time`,
//! `bench_function`, `Bencher::iter`, `black_box` and the
//! `criterion_group!` / `criterion_main!` macros — with simple wall-clock
//! measurement (median over samples) and plain-text reporting. There is
//! no statistical analysis, baseline storage, or HTML output.

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark manager handed to `criterion_group!` functions.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
        }
    }
}

/// A named group sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Wall-clock budget per benchmark (a cap, not a target).
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Run one benchmark and print its median sample time.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_size);
        let budget = Instant::now();
        // one warmup sample, then timed samples until count or budget
        let mut b = Bencher {
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            samples.push(b.elapsed);
            if budget.elapsed() > self.measurement_time {
                break;
            }
        }
        samples.sort();
        let median = samples[samples.len() / 2];
        println!(
            "{}/{}: median {:?} over {} samples",
            self.name,
            id,
            median,
            samples.len()
        );
        self
    }

    /// End the group (printing is immediate, so this is a no-op).
    pub fn finish(self) {}
}

/// Times the closure passed to [`Bencher::iter`].
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    /// Measure one sample: the total time of a small batch of calls.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        const BATCH: u32 = 3;
        let t0 = Instant::now();
        for _ in 0..BATCH {
            black_box(f());
        }
        self.elapsed = t0.elapsed() / BATCH;
    }
}

/// Bundle benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("unit");
        g.sample_size(3).measurement_time(Duration::from_millis(50));
        let mut calls = 0u32;
        g.bench_function("noop", |b| {
            calls += 1;
            b.iter(|| black_box(1 + 1))
        });
        g.finish();
        assert!(calls >= 2, "warmup + at least one sample");
    }
}
